// Experiment A2 — the Quine-McCluskey engine of §5.2.
//
// Every SEANCE equation (Z, SSD, fsv, Y) is reduced with this engine, so
// its scaling over variable count and ON-set density bounds the whole
// flow.  Sweeps essential-SOP and all-primes modes on random functions.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "logic/qm.hpp"

namespace {

struct Func {
  std::vector<seance::logic::Minterm> on;
  std::vector<seance::logic::Minterm> dc;
};

Func random_function(int num_vars, double p_on, double p_dc, std::uint64_t seed) {
  Func f;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (seance::logic::Minterm m = 0; m < (1u << num_vars); ++m) {
    const double r = dist(rng);
    if (r < p_on) {
      f.on.push_back(m);
    } else if (r < p_on + p_dc) {
      f.dc.push_back(m);
    }
  }
  return f;
}

void print_table() {
  std::printf("\n=== Quine-McCluskey scaling (random functions, 30%% ON / 20%% DC) ===\n");
  std::printf("%6s | %8s | %10s | %10s\n", "vars", "primes", "ess. cubes", "all-prime");
  std::printf("-------+----------+------------+-----------\n");
  for (int vars = 4; vars <= 12; ++vars) {
    const Func f = random_function(vars, 0.3, 0.2, 97);
    const auto primes = seance::logic::compute_primes(vars, f.on, f.dc);
    const auto essential = seance::logic::minimize_sop(vars, f.on, f.dc);
    const auto all = seance::logic::all_primes_cover(vars, f.on, f.dc);
    std::printf("%6d | %8zu | %10zu | %10zu\n", vars, primes.size(),
                essential.size(), all.size());
  }
  std::printf("\n");
}

void BM_ComputePrimes(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const Func f = random_function(vars, 0.3, 0.2, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::logic::compute_primes(vars, f.on, f.dc));
  }
}
BENCHMARK(BM_ComputePrimes)->DenseRange(4, 12)->Unit(benchmark::kMicrosecond);

void BM_EssentialSop(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const Func f = random_function(vars, 0.3, 0.2, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::logic::minimize_sop(vars, f.on, f.dc));
  }
}
BENCHMARK(BM_EssentialSop)->DenseRange(4, 11)->Unit(benchmark::kMicrosecond);

void BM_AllPrimes(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const Func f = random_function(vars, 0.3, 0.2, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::logic::all_primes_cover(vars, f.on, f.dc));
  }
}
BENCHMARK(BM_AllPrimes)->DenseRange(4, 11)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
