// Experiment A2 — the Quine-McCluskey engine of §5.2.
//
// Every SEANCE equation (Z, SSD, fsv, Y) is reduced with this engine, so
// its scaling over variable count and ON-set density bounds the whole
// flow.  Sweeps essential-SOP and all-primes modes on random functions,
// prints a before/after table against the retained reference covering
// path (qm_reference.hpp), and times the full pipeline on the hard
// 8-state / 4-input generator shape whose equations live in the same
// variable range.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <random>
#include <string_view>

#include "bench_suite/generator.hpp"
#include "core/synthesize.hpp"
#include "driver/batch.hpp"
#include "logic/qm.hpp"
#include "logic/qm_reference.hpp"

namespace {

struct Func {
  std::vector<seance::logic::Minterm> on;
  std::vector<seance::logic::Minterm> dc;
};

Func random_function(int num_vars, double p_on, double p_dc, std::uint64_t seed) {
  Func f;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (seance::logic::Minterm m = 0; m < (1u << num_vars); ++m) {
    const double r = dist(rng);
    if (r < p_on) {
      f.on.push_back(m);
    } else if (r < p_on + p_dc) {
      f.dc.push_back(m);
    }
  }
  return f;
}

void print_table() {
  std::printf("\n=== Quine-McCluskey scaling (random functions, 30%% ON / 20%% DC) ===\n");
  std::printf("%6s | %8s | %10s | %10s\n", "vars", "primes", "ess. cubes", "all-prime");
  std::printf("-------+----------+------------+-----------\n");
  for (int vars = 4; vars <= 12; ++vars) {
    const Func f = random_function(vars, 0.3, 0.2, 97);
    const auto primes = seance::logic::compute_primes(vars, f.on, f.dc);
    const auto essential = seance::logic::minimize_sop(vars, f.on, f.dc);
    const auto all = seance::logic::all_primes_cover(vars, f.on, f.dc);
    std::printf("%6d | %8zu | %10zu | %10zu\n", vars, primes.size(),
                essential.size(), all.size());
  }
  std::printf("\n");
}

// Before/after: the seed covering path (sorted vectors + binary_search)
// against the packed-bitset engine on identical functions.  Variables
// 9-10 are the arity range of generated 8-state / 4-input table
// equations (4 inputs + up to 5 state variables + fsv).  Opt-in via
// --compare-engines: the reference side alone costs ~7 s, which would
// dominate every filtered run (CI smoke included).
void print_engine_comparison() {
  using Clock = std::chrono::steady_clock;
  std::printf("=== covering engine before/after (essential-SOP, identical inputs) ===\n");
  std::printf("%6s | %12s | %12s | %9s | %9s\n", "vars", "reference ms",
              "bitset ms", "ref size", "new size");
  std::printf("-------+--------------+--------------+-----------+----------\n");
  for (int vars = 7; vars <= 10; ++vars) {
    const Func f = random_function(vars, 0.3, 0.2, 97);
    const auto t0 = Clock::now();
    const auto before = seance::logic::reference_select_cover(
        vars, f.on, f.dc, seance::logic::CoverMode::kEssentialSop);
    const auto t1 = Clock::now();
    const auto after = seance::logic::select_cover(
        vars, f.on, f.dc, seance::logic::CoverMode::kEssentialSop);
    const auto t2 = Clock::now();
    const double ref_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double new_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::printf("%6d | %12.2f | %12.3f | %9zu | %9zu\n", vars, ref_ms, new_ms,
                before.size(), after.size());
  }
  std::printf("\n");
}

void BM_ComputePrimes(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const Func f = random_function(vars, 0.3, 0.2, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::logic::compute_primes(vars, f.on, f.dc));
  }
}
BENCHMARK(BM_ComputePrimes)->DenseRange(4, 12)->Unit(benchmark::kMicrosecond);

void BM_EssentialSop(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const Func f = random_function(vars, 0.3, 0.2, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::logic::minimize_sop(vars, f.on, f.dc));
  }
}
BENCHMARK(BM_EssentialSop)->DenseRange(4, 11)->Unit(benchmark::kMicrosecond);

// The "before" engine on the same functions.  Kept to 4-9 variables:
// the reference exact path needs seconds per call at 9+.
void BM_EssentialSopReference(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const Func f = random_function(vars, 0.3, 0.2, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::logic::reference_select_cover(
        vars, f.on, f.dc, seance::logic::CoverMode::kEssentialSop));
  }
}
BENCHMARK(BM_EssentialSopReference)->DenseRange(4, 9)->Unit(benchmark::kMicrosecond);

void BM_AllPrimes(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const Func f = random_function(vars, 0.3, 0.2, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::logic::all_primes_cover(vars, f.on, f.dc));
  }
}
BENCHMARK(BM_AllPrimes)->DenseRange(4, 11)->Unit(benchmark::kMicrosecond);

// Full pipeline on the hard canonical generator shape (8 states /
// 4 inputs): QM covering dominates this wall time, so the counter tracks
// the batch-corpus improvement end to end.
void BM_SynthesizeHardShape(benchmark::State& state) {
  seance::bench_suite::GeneratorOptions gen = seance::driver::kHardShape;
  gen.seed = seance::driver::derive_seed(1, static_cast<std::uint64_t>(state.range(0)));
  const auto table = seance::bench_suite::generate(gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::core::synthesize(table));
  }
}
BENCHMARK(BM_SynthesizeHardShape)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip our flag before google-benchmark sees (and rejects) it.
  bool compare_engines = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--compare-engines") {
      compare_engines = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  print_table();
  if (compare_engines) print_engine_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
