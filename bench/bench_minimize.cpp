// Front-of-pipeline (minimize + USTT assignment) benchmarks.
//
// Before/after tables against the retained seed implementations
// (reference_reduce / reference_assign_ustt) on the canonical corpus
// shapes.  The seed front half was quadratic three times over — pair-chart
// fixpoint sweeps, level-wise prime generation that re-pushed every
// subset once per parent, and an O(D^2) dichotomy dominance sweep — which
// at the hardest shape (20 states / 6 inputs) dominated job wall time.
// The packed-word engines are result-identical (see
// tests/test_minimize_equivalence.cpp, tests/test_assign_equivalence.cpp),
// so the table also cross-checks class/variable counts per row.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "assign/ustt.hpp"
#include "assign/ustt_reference.hpp"
#include "bench_suite/generator.hpp"
#include "driver/batch.hpp"
#include "flowtable/table.hpp"
#include "minimize/reduce.hpp"
#include "minimize/reduce_reference.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using seance::flowtable::FlowTable;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

FlowTable shaped_table(const seance::bench_suite::GeneratorOptions& shape,
                       std::uint64_t index) {
  seance::bench_suite::GeneratorOptions gen = shape;
  gen.seed = seance::driver::derive_seed(1, index);
  return seance::bench_suite::generate(gen);
}

void print_shape_table(const char* label,
                       const seance::bench_suite::GeneratorOptions& shape,
                       int jobs) {
  std::printf("\n%s (%d states / %d inputs, %d jobs)\n", label, shape.num_states,
              shape.num_inputs, jobs);
  std::printf("%4s | %12s | %12s | %8s | %12s | %12s | %8s | %s\n", "job",
              "ref red ms", "new red ms", "speedup", "ref asn ms", "new asn ms",
              "speedup", "check");
  std::printf("-----+--------------+--------------+----------+--------------+"
              "--------------+----------+------\n");
  double ref_red_total = 0, new_red_total = 0, ref_asn_total = 0, new_asn_total = 0;
  for (int i = 0; i < jobs; ++i) {
    const FlowTable table = shaped_table(shape, static_cast<std::uint64_t>(i));
    const auto t0 = Clock::now();
    const auto ref_red = seance::minimize::reference_reduce(table);
    const auto t1 = Clock::now();
    const auto new_red = seance::minimize::reduce(table);
    const auto t2 = Clock::now();
    const auto ref_asn = seance::assign::reference_assign_ustt(ref_red.reduced);
    const auto t3 = Clock::now();
    const auto new_asn = seance::assign::assign_ustt(new_red.reduced);
    const auto t4 = Clock::now();
    const double rr = ms_between(t0, t1), nr = ms_between(t1, t2);
    const double ra = ms_between(t2, t3), na = ms_between(t3, t4);
    ref_red_total += rr;
    new_red_total += nr;
    ref_asn_total += ra;
    new_asn_total += na;
    const bool match = ref_red.classes == new_red.classes &&
                       ref_asn.num_vars == new_asn.num_vars;
    std::printf("%4d | %12.3f | %12.3f | %7.1fx | %12.3f | %12.3f | %7.1fx | %s\n",
                i, rr, nr, nr > 0 ? rr / nr : 0.0, ra, na,
                na > 0 ? ra / na : 0.0, match ? "match" : "MISMATCH");
  }
  std::printf("     | %12.3f | %12.3f | %7.1fx | %12.3f | %12.3f | %7.1fx | total\n",
              ref_red_total, new_red_total,
              new_red_total > 0 ? ref_red_total / new_red_total : 0.0,
              ref_asn_total, new_asn_total,
              new_asn_total > 0 ? ref_asn_total / new_asn_total : 0.0);
}

void print_table() {
  std::printf("=== minimize + USTT before/after (seed reference vs packed-word "
              "engines) ===\n");
  print_shape_table("harder shape", seance::driver::kHarderShape, 10);
  print_shape_table("hardest shape", seance::driver::kHardestShape, 10);
  std::printf("\n");
}

void BM_ReduceHardestShape(benchmark::State& state) {
  const FlowTable table =
      shaped_table(seance::driver::kHardestShape,
                   static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::minimize::reduce(table));
  }
}
BENCHMARK(BM_ReduceHardestShape)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_ReduceReferenceHardestShape(benchmark::State& state) {
  const FlowTable table =
      shaped_table(seance::driver::kHardestShape,
                   static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::minimize::reference_reduce(table));
  }
}
BENCHMARK(BM_ReduceReferenceHardestShape)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void BM_AssignHardestShape(benchmark::State& state) {
  const FlowTable table =
      shaped_table(seance::driver::kHardestShape,
                   static_cast<std::uint64_t>(state.range(0)));
  const auto reduced = seance::minimize::reduce(table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::assign::assign_ustt(reduced.reduced));
  }
}
BENCHMARK(BM_AssignHardestShape)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_AssignReferenceHardestShape(benchmark::State& state) {
  const FlowTable table =
      shaped_table(seance::driver::kHardestShape,
                   static_cast<std::uint64_t>(state.range(0)));
  const auto reduced = seance::minimize::reduce(table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        seance::assign::reference_assign_ustt(reduced.reduced));
  }
}
BENCHMARK(BM_AssignReferenceHardestShape)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
