// Experiment F1/F2 — the FANTOM architecture of Figs. 1-2 in operation.
//
// Assembles the complete gate-level machine (combinational core + VOM
// handshake) for each benchmark and drives long random-walk workloads
// with multiple-input changes through the G/VOM protocol.  Reports the
// hazard-freedom scoreboard (failures must be zero within the timing
// assumptions) and the event-simulation throughput.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesize.hpp"
#include "sim/harness.hpp"

namespace {

using seance::bench_suite::table1_suite;

void print_walks() {
  std::printf("\n=== FANTOM handshake walks (random MIC workloads, skew <= 2) ===\n");
  std::printf("%-14s | %7s | %9s | %8s | %9s | %10s\n", "Benchmark", "steps",
              "MIC steps", "failures", "Z glitch", "gates");
  std::printf("---------------+---------+-----------+----------+-----------+-----------\n");
  for (const auto& bench : table1_suite()) {
    const auto table = seance::bench_suite::load(bench);
    const auto machine = seance::core::synthesize(table);
    seance::sim::HarnessOptions options;
    options.max_skew = 2;
    seance::sim::FantomHarness harness(machine, options);
    (void)harness.reset(0, machine.table.stable_columns(0).front());
    const auto summary = harness.random_walk(2000, 17);
    std::printf("%-14s | %7d | %9d | %8d | %9d | %10d\n", bench.name.c_str(),
                summary.applied, summary.mic_steps, summary.failures,
                summary.z_glitches, harness.net().stats().logic_gates);
  }
  std::printf("\n");
}

void BM_HandshakeWalk(benchmark::State& state) {
  const auto& bench = table1_suite()[static_cast<std::size_t>(state.range(0))];
  const auto table = seance::bench_suite::load(bench);
  const auto machine = seance::core::synthesize(table);
  seance::sim::HarnessOptions options;
  options.max_skew = 2;
  std::int64_t steps = 0;
  for (auto _ : state) {
    seance::sim::FantomHarness harness(machine, options);
    (void)harness.reset(0, machine.table.stable_columns(0).front());
    const auto summary = harness.random_walk(200, 29);
    steps += summary.applied;
    benchmark::DoNotOptimize(summary);
  }
  state.counters["steps_per_s"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
  state.SetLabel(bench.name);
}

BENCHMARK(BM_HandshakeWalk)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_walks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
