// Gate-level vs cover-level Eichelberger verification cost.
//
// The cover-level verifier (sim/ternary_verify) evaluates the machine's
// SOP covers / factored expressions directly; the gate-level verifier
// (sim/ternary_netsim) re-derives every verdict from the exported
// netlist, one memoized cone evaluation per feedback cut per fixpoint
// pass.  Both walk the same transitions and must agree exactly; the
// interesting number is what the structural detour costs per transition.
// The summary table also reports the full loop the CI gate runs per
// corpus job: export -> parse_verilog -> gate-level verify.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesize.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog.hpp"
#include "sim/ternary_netsim.hpp"
#include "sim/ternary_verify.hpp"

namespace {

using seance::bench_suite::table1_suite;

void print_comparison() {
  std::printf(
      "\n=== Eichelberger verification: covers vs exported netlist ===\n");
  std::printf("%-14s | %11s | %5s | %5s | %7s | %10s\n", "Benchmark",
              "transitions", "A", "B", "agree", "gates");
  std::printf(
      "---------------+-------------+-------+-------+---------+-----------\n");
  for (const auto& bench : table1_suite()) {
    const auto table = seance::bench_suite::load(bench);
    const auto machine = seance::core::synthesize(table);
    const auto cover = seance::sim::ternary_verify(machine);
    seance::netlist::Netlist netlist;
    (void)seance::netlist::build_fantom(machine, netlist);
    const auto reimported = seance::netlist::parse_verilog(
        seance::netlist::to_verilog(netlist, "fantom"));
    const auto gate = seance::sim::gate_ternary_verify(reimported, machine);
    const bool agree =
        cover.procedure_a_violations == gate.procedure_a_violations &&
        cover.procedure_b_violations == gate.procedure_b_violations &&
        cover.transitions_checked == gate.transitions_checked;
    std::printf("%-14s | %11d | %5d | %5d | %7s | %10d\n", bench.name.c_str(),
                gate.transitions_checked, gate.procedure_a_violations,
                gate.procedure_b_violations, agree ? "yes" : "NO",
                reimported.stats().logic_gates);
  }
  std::printf("\n");
}

void BM_CoverTernary(benchmark::State& state) {
  const auto& bench = table1_suite()[static_cast<std::size_t>(state.range(0))];
  const auto machine =
      seance::core::synthesize(seance::bench_suite::load(bench));
  std::int64_t transitions = 0;
  for (auto _ : state) {
    const auto report = seance::sim::ternary_verify(machine);
    transitions += report.transitions_checked;
    benchmark::DoNotOptimize(report);
  }
  state.counters["transitions_per_s"] = benchmark::Counter(
      static_cast<double>(transitions), benchmark::Counter::kIsRate);
  state.SetLabel(bench.name);
}

void BM_GateTernary(benchmark::State& state) {
  const auto& bench = table1_suite()[static_cast<std::size_t>(state.range(0))];
  const auto machine =
      seance::core::synthesize(seance::bench_suite::load(bench));
  seance::netlist::Netlist netlist;
  (void)seance::netlist::build_fantom(machine, netlist);
  std::int64_t transitions = 0;
  for (auto _ : state) {
    const auto report = seance::sim::gate_ternary_verify(netlist, machine);
    transitions += report.transitions_checked;
    benchmark::DoNotOptimize(report);
  }
  state.counters["transitions_per_s"] = benchmark::Counter(
      static_cast<double>(transitions), benchmark::Counter::kIsRate);
  state.SetLabel(bench.name);
}

// The whole per-job CI gate: export, re-import, verify the re-import.
void BM_RoundTripVerify(benchmark::State& state) {
  const auto& bench = table1_suite()[static_cast<std::size_t>(state.range(0))];
  const auto machine =
      seance::core::synthesize(seance::bench_suite::load(bench));
  for (auto _ : state) {
    seance::netlist::Netlist netlist;
    (void)seance::netlist::build_fantom(machine, netlist);
    const std::string verilog = seance::netlist::to_verilog(netlist, "fantom");
    const auto reimported = seance::netlist::parse_verilog(verilog);
    const auto report = seance::sim::gate_ternary_verify(reimported, machine);
    benchmark::DoNotOptimize(report);
  }
  state.SetLabel(bench.name);
}

BENCHMARK(BM_CoverTernary)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GateTernary)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RoundTripVerify)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
