// Fleet-layer coordination overhead — the lease tax per slice.
//
// A lease backend sits on every slice's critical path (acquire before
// the worker spawns, heartbeats while it runs, complete/abandon after),
// so its cost bounds how fine --lease-units can usefully cut a corpus:
// a DirBackend cycle is a handful of filesystem operations, and it must
// stay orders of magnitude under a single synthesis job for 16-way unit
// granularity to be free.  The ProcessBackend cycle is the in-memory
// floor for comparison, and the steal path prices a dead-runner
// recovery.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "driver/shard.hpp"
#include "fleet/dir.hpp"
#include "fleet/fleet.hpp"
#include "fleet/process.hpp"
#include "store/store.hpp"

namespace {

namespace fs = std::filesystem;
using seance::driver::ShardPlan;
using seance::fleet::DirBackend;
using seance::fleet::ProcessBackend;
using seance::fleet::Slice;

std::vector<Slice> bench_slices(int units, const std::string& dir) {
  std::vector<std::string> names;
  for (int i = 0; i < units; ++i) names.push_back("job-" + std::to_string(i));
  return seance::fleet::make_slices(ShardPlan::round_robin(units, units),
                                    names, {}, dir);
}

std::string fresh_dir(const char* name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

/// In-memory lease table: the floor every shared backend is measured
/// against.
void BM_ProcessBackendCycle(benchmark::State& state) {
  const std::string dir = fresh_dir("seance_bench_fleet_proc");
  const std::vector<Slice> slices = bench_slices(16, dir);
  for (auto _ : state) {
    ProcessBackend lease;
    for (const Slice& s : slices) {
      benchmark::DoNotOptimize(lease.acquire(s));
      benchmark::DoNotOptimize(lease.heartbeat(s));
      benchmark::DoNotOptimize(lease.complete(s));
    }
  }
  state.counters["slices"] = static_cast<double>(slices.size());
}
BENCHMARK(BM_ProcessBackendCycle);

/// One full claim -> heartbeat -> complete cycle per slice through the
/// shared directory: temp write + hard link, nonce read-back + mtime
/// bump, done-marker rename.
void BM_DirBackendCycle(benchmark::State& state) {
  const std::string dir = fresh_dir("seance_bench_fleet_dir");
  const std::vector<Slice> slices = bench_slices(16, dir);
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    DirBackend lease(dir, {.runner_id = "bench", .lease_ttl_ms = 60000});
    state.ResumeTiming();
    for (const Slice& s : slices) {
      benchmark::DoNotOptimize(lease.acquire(s));
      benchmark::DoNotOptimize(lease.heartbeat(s));
      benchmark::DoNotOptimize(lease.complete(s));
    }
  }
  state.counters["slices"] = static_cast<double>(slices.size());
}
BENCHMARK(BM_DirBackendCycle);

/// Dead-runner recovery: the victim abandons (backdated mtime), the
/// thief steals (replace + nonce verify) and completes.
void BM_DirBackendSteal(benchmark::State& state) {
  const std::string dir = fresh_dir("seance_bench_fleet_steal");
  const std::vector<Slice> slices = bench_slices(16, dir);
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    DirBackend victim(dir, {.runner_id = "victim", .lease_ttl_ms = 60000});
    DirBackend thief(dir, {.runner_id = "thief", .lease_ttl_ms = 60000});
    for (const Slice& s : slices) {
      benchmark::DoNotOptimize(victim.acquire(s));
      victim.abandon(s, "bench");
    }
    state.ResumeTiming();
    for (const Slice& s : slices) {
      benchmark::DoNotOptimize(thief.acquire(s));
      benchmark::DoNotOptimize(thief.complete(s));
    }
  }
  state.counters["slices"] = static_cast<double>(slices.size());
}
BENCHMARK(BM_DirBackendSteal);

}  // namespace

BENCHMARK_MAIN();
