// Experiment F5 — ablation of the step-7 hazard factoring (Fig. 5).
//
// Compares, per benchmark:
//   * factored Y (hold/excitation with first-level gates) vs flat SOP,
//   * depth, gate count and literal count of the resulting networks.
// The factored form pins Y depth at <= 5 (the paper's constant column)
// and removes complemented-input first-level gates.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesize.hpp"

namespace {

using seance::bench_suite::table1_suite;

struct Shape {
  int depth = 0;
  int gates = 0;
  int literals = 0;
};

Shape y_shape(const seance::core::FantomMachine& machine) {
  Shape shape;
  for (const auto& eq : machine.y) {
    shape.depth = std::max(shape.depth, eq.expr->depth());
    shape.gates += eq.expr->gate_count();
    shape.literals += eq.expr->literal_count();
  }
  return shape;
}

void print_ablation() {
  std::printf("\n=== Fig. 5 factoring ablation (Y networks) ===\n");
  std::printf("%-14s | %17s | %17s\n", "Benchmark", "factored d/g/l", "flat SOP d/g/l");
  std::printf("---------------+-------------------+------------------\n");
  for (const auto& bench : table1_suite()) {
    const auto table = seance::bench_suite::load(bench);
    seance::core::SynthesisOptions factored;
    seance::core::SynthesisOptions flat;
    flat.factor = false;
    const Shape f = y_shape(seance::core::synthesize(table, factored));
    const Shape s = y_shape(seance::core::synthesize(table, flat));
    std::printf("%-14s | %4d /%4d /%5d | %4d /%4d /%5d\n", bench.name.c_str(),
                f.depth, f.gates, f.literals, s.depth, s.gates, s.literals);
  }
  std::printf("(d = max depth, g = gates, l = literals; flat SOP uses input inverters)\n\n");
}

void BM_SynthFactored(benchmark::State& state) {
  const auto table = seance::bench_suite::load(
      table1_suite()[static_cast<std::size_t>(state.range(0))]);
  for (auto _ : state) benchmark::DoNotOptimize(seance::core::synthesize(table));
}
BENCHMARK(BM_SynthFactored)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_SynthFlat(benchmark::State& state) {
  const auto table = seance::bench_suite::load(
      table1_suite()[static_cast<std::size_t>(state.range(0))]);
  seance::core::SynthesisOptions options;
  options.factor = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::core::synthesize(table, options));
  }
}
BENCHMARK(BM_SynthFlat)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
