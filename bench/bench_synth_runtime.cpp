// Experiment T1b — §6's runtime claim: "SEANCE takes about four seconds
// of CPU time on a Digital Equipment VAXStation 3100 to run an example."
//
// We time the full seven-step pipeline per benchmark on the host.  A
// modern machine is ~10^3-10^4x a VAXStation 3100 (~3 VUPS), so anything
// in the 0.1-10 ms range is order-of-magnitude consistent with the paper.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesize.hpp"

namespace {

using seance::bench_suite::table1_suite;

void print_runtimes() {
  std::printf("\n=== Synthesis CPU time per benchmark (paper: ~4 s on a VAXStation 3100) ===\n");
  std::printf("%-14s | %12s\n", "Benchmark", "wall time");
  std::printf("---------------+--------------\n");
  for (const auto& bench : table1_suite()) {
    const auto table = seance::bench_suite::load(bench);
    const auto start = std::chrono::steady_clock::now();
    const auto machine = seance::core::synthesize(table);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    std::printf("%-14s | %9.3f ms   (%d states, %d hazard states)\n",
                bench.name.c_str(), ms, machine.table.num_states(),
                static_cast<int>(machine.hazards.fl.size()));
  }
  std::printf("\n");
}

void BM_FullPipeline(benchmark::State& state) {
  const auto& bench = table1_suite()[static_cast<std::size_t>(state.range(0))];
  const auto table = seance::bench_suite::load(bench);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::core::synthesize(table));
  }
  state.SetLabel(bench.name);
}

BENCHMARK(BM_FullPipeline)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_runtimes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
