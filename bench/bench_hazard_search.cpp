// Experiment F4 — cost and yield of the Fig. 4 hazard-search algorithm.
//
// The search enumerates every strict intermediate vector of every MIC
// stable-state transition: a transition flipping h input bits visits
// 2^h - 2 points.  The sweep varies input width and MIC density and
// reports visited points, hazard hits, and time.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "assign/ustt.hpp"
#include "bench_suite/generator.hpp"
#include "hazard/search.hpp"
#include "minimize/reduce.hpp"

namespace {

struct Prepared {
  seance::flowtable::FlowTable table;
  std::vector<std::uint32_t> codes;
  int num_vars;
};

Prepared prepare(int states, int inputs, double mic_bias, std::uint64_t seed) {
  seance::bench_suite::GeneratorOptions gen;
  gen.num_states = states;
  gen.num_inputs = inputs;
  gen.num_outputs = 1;
  gen.mic_bias = mic_bias;
  gen.transition_density = 0.7;
  gen.seed = seed;
  auto table = seance::bench_suite::generate(gen);
  auto assignment = seance::assign::assign_ustt(table);
  return Prepared{std::move(table), std::move(assignment.codes), assignment.num_vars};
}

void print_sweep() {
  std::printf("\n=== Fig. 4 hazard search: yield vs input width and MIC bias ===\n");
  std::printf("%6s %6s %9s | %12s %12s %12s %10s\n", "inputs", "states",
              "mic_bias", "transitions", "MIC trans", "points", "hazards");
  std::printf("------------------------+----------------------------------------------------\n");
  for (const int inputs : {2, 3, 4, 5, 6}) {
    for (const double bias : {0.2, 0.8}) {
      const Prepared p = prepare(8, inputs, bias, 11);
      seance::hazard::EncodedTable encoded{&p.table, p.codes, p.num_vars};
      const auto lists = seance::hazard::find_hazards(encoded);
      std::printf("%6d %6d %9.1f | %12zu %12zu %12zu %10zu\n", inputs, 8, bias,
                  lists.stats.stable_transitions, lists.stats.mic_transitions,
                  lists.stats.intermediate_points, lists.stats.hazard_hits);
    }
  }
  std::printf("\n");
}

void BM_HazardSearchWidth(benchmark::State& state) {
  const Prepared p = prepare(8, static_cast<int>(state.range(0)), 0.8, 11);
  seance::hazard::EncodedTable encoded{&p.table, p.codes, p.num_vars};
  std::size_t points = 0;
  for (auto _ : state) {
    const auto lists = seance::hazard::find_hazards(encoded);
    points = lists.stats.intermediate_points;
    benchmark::DoNotOptimize(lists);
  }
  state.counters["points"] = static_cast<double>(points);
}
BENCHMARK(BM_HazardSearchWidth)->DenseRange(2, 6)->Unit(benchmark::kMicrosecond);

void BM_HazardSearchStates(benchmark::State& state) {
  const Prepared p = prepare(static_cast<int>(state.range(0)), 4, 0.8, 11);
  seance::hazard::EncodedTable encoded{&p.table, p.codes, p.num_vars};
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::hazard::find_hazards(encoded));
  }
}
BENCHMARK(BM_HazardSearchStates)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
