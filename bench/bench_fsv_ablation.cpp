// Experiment A1 — the point of the paper: what fsv protection buys.
//
// Two machines are synthesized from the same flow table: FANTOM (with
// fsv, hazard holds and consensus repair) and the classic baseline
// (no fsv).  Both run the same MIC workloads through the same handshake
// harness while the input line-delay skew sweeps upward.  The baseline
// starts committing function hazards (wrong successor states) as soon as
// skew exceeds its direct excitation path; FANTOM stays clean until far
// beyond, and within the paper's timing assumption (line delay < loop
// delay) it never fails.  The area overhead column quantifies §8's
// "resultant state machine has some overhead".

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesize.hpp"
#include "sim/harness.hpp"

namespace {

using seance::bench_suite::table1_suite;

int walk_failures(const seance::core::FantomMachine& machine, int skew,
                  std::uint64_t seed, int steps) {
  seance::sim::HarnessOptions options;
  options.max_skew = static_cast<seance::sim::Time>(skew);
  options.seed = seed;
  options.delays.seed = seed * 101 + 7;
  seance::sim::FantomHarness harness(machine, options);
  if (!harness.reset(0, machine.table.stable_columns(0).front())) return steps;
  return harness.random_walk(steps, seed * 13 + 1).failures;
}

void print_failure_sweep() {
  std::printf("\n=== Hazard manifestation vs input skew (failures per 600 steps, 3 seeds) ===\n");
  std::printf("%-14s | %8s |", "Benchmark", "machine");
  for (int skew = 0; skew <= 8; skew += 2) std::printf(" skew=%d |", skew);
  std::printf("  gates (overhead)\n");
  std::printf("---------------+----------+--------+--------+--------+--------+--------+------------------\n");
  for (const auto& bench : table1_suite()) {
    const auto table = seance::bench_suite::load(bench);
    // FANTOM: fsv + hazard holds + consensus repair.
    const auto fantom = seance::core::synthesize(table);
    // Baseline: classic USTT machine with consensus gates but no fsv —
    // isolates the *function* M-hazard protection the paper contributes.
    seance::core::SynthesisOptions base_options;
    base_options.add_fsv = false;
    const auto baseline = seance::core::synthesize(table, base_options);
    // Naive: essential SOP only (no consensus, no fsv).
    seance::core::SynthesisOptions naive_options;
    naive_options.add_fsv = false;
    naive_options.consensus_repair = false;
    const auto naive = seance::core::synthesize(table, naive_options);

    const int fantom_gates = fantom.gate_count();
    const int baseline_gates = baseline.gate_count();
    const struct {
      const seance::core::FantomMachine* machine;
      const char* label;
    } rows[] = {{&fantom, "FANTOM"}, {&baseline, "baseline"}, {&naive, "naive"}};
    for (const auto& row : rows) {
      std::printf("%-14s | %8s |", bench.name.c_str(), row.label);
      for (int skew = 0; skew <= 8; skew += 2) {
        int failures = 0;
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
          failures += walk_failures(*row.machine, skew, seed, 200);
        }
        std::printf(" %6d |", failures);
      }
      if (row.machine == &fantom) {
        std::printf("  %d (+%.0f%% over baseline)\n", fantom_gates,
                    100.0 * (fantom_gates - baseline_gates) /
                        (baseline_gates > 0 ? baseline_gates : 1));
      } else {
        std::printf("  %d\n", row.machine->gate_count());
      }
    }
  }
  std::printf("(skew <= 2 is within the paper's line-delay < loop-delay assumption;\n"
              " baseline = consensus gates without fsv, naive = essential SOP only)\n\n");
}

void BM_FantomWalk(benchmark::State& state) {
  const auto table = seance::bench_suite::load(
      table1_suite()[static_cast<std::size_t>(state.range(0))]);
  const auto machine = seance::core::synthesize(table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(walk_failures(machine, 2, 5, 100));
  }
}
BENCHMARK(BM_FantomWalk)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_BaselineWalk(benchmark::State& state) {
  const auto table = seance::bench_suite::load(
      table1_suite()[static_cast<std::size_t>(state.range(0))]);
  seance::core::SynthesisOptions options;
  options.add_fsv = false;
  const auto machine = seance::core::synthesize(table, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(walk_failures(machine, 2, 5, 100));
  }
}
BENCHMARK(BM_BaselineWalk)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_failure_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
