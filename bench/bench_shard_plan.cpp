// Shard-plan and merge overhead — the orchestration tax of running a
// corpus across worker processes.
//
// Sharding only pays when split + merge cost stays negligible against
// the jobs themselves, and when the plan keeps the slowest worker close
// to the mean (the parent's wall clock is the max over workers).  The
// sweep prints the predicted makespan of both plan strategies under the
// estimate_cost model for mixed-shape corpora; the timed benchmarks pin
// plan construction and store::merge throughput at corpus scale.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_suite/generator.hpp"
#include "driver/batch.hpp"
#include "driver/shard.hpp"
#include "store/store.hpp"

namespace {

using seance::driver::ShardPlan;

/// Synthetic per-job costs shaped like the golden corpus: a long tail of
/// cheap 6x3 jobs plus heavy hard/harder shapes at the end.
std::vector<double> mixed_costs(int jobs) {
  std::vector<double> costs;
  costs.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    if (i % 11 == 10) {
      costs.push_back(384.0);  // 12 states x 2^5 columns
    } else if (i % 5 == 4) {
      costs.push_back(128.0);  // 8 states x 2^4
    } else {
      costs.push_back(48.0);  // 6 states x 2^3
    }
  }
  return costs;
}

double makespan(const ShardPlan& plan, const std::vector<double>& costs) {
  double worst = 0;
  for (const auto& slice : plan.slices) {
    double load = 0;
    for (const int j : slice) load += costs[static_cast<std::size_t>(j)];
    worst = std::max(worst, load);
  }
  return worst;
}

void print_sweep() {
  std::printf("\n=== shard plans: predicted slowest-worker share (cost model) ===\n");
  std::printf("%6s %6s | %14s %14s %14s\n", "jobs", "K", "total cost",
              "round-robin", "cost-weighted");
  for (const int jobs : {281, 2810}) {
    const std::vector<double> costs = mixed_costs(jobs);
    double total = 0;
    for (const double c : costs) total += c;
    for (const int k : {2, 4, 8, 16}) {
      const double rr = makespan(ShardPlan::round_robin(jobs, k), costs);
      const double cw = makespan(ShardPlan::cost_weighted(costs, k), costs);
      std::printf("%6d %6d | %14.0f %10.0f (%4.2fx) %6.0f (%4.2fx)\n", jobs, k,
                  total, rr, rr * k / total, cw, cw * k / total);
    }
  }
  std::printf("(x = slowest worker vs perfect split; 1.00x is linear scaling)\n\n");
}

void BM_RoundRobinPlan(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShardPlan::round_robin(jobs, 16));
  }
}
BENCHMARK(BM_RoundRobinPlan)->Arg(281)->Arg(100000);

void BM_CostWeightedPlan(benchmark::State& state) {
  const std::vector<double> costs = mixed_costs(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShardPlan::cost_weighted(costs, 16));
  }
}
BENCHMARK(BM_CostWeightedPlan)->Arg(281)->Arg(100000);

/// store::merge over a K-way split of an N-job report — the parent-side
/// stitch cost after all workers finish.
void BM_StoreMerge(benchmark::State& state) {
  const int jobs = 2810;
  const int k = static_cast<int>(state.range(0));
  seance::store::CorpusIdentity identity;
  identity.corpus = "bench";
  std::vector<std::string> names;
  seance::driver::BatchReport whole;
  for (int i = 0; i < jobs; ++i) {
    seance::driver::JobResult r;
    r.name = "gen-6x3-" + std::to_string(i);
    r.gate_count = i;
    names.push_back(r.name);
    whole.jobs.push_back(std::move(r));
  }
  const ShardPlan plan = ShardPlan::round_robin(jobs, k);
  std::vector<seance::store::StoredReport> shards(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    auto& shard = shards[static_cast<std::size_t>(s)];
    shard.identity = identity;
    shard.identity.shard = std::to_string(s) + "/" + std::to_string(k);
    for (const int j : plan.slices[static_cast<std::size_t>(s)]) {
      shard.report.jobs.push_back(whole.jobs[static_cast<std::size_t>(j)]);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::store::merge(identity, shards, names));
  }
  state.counters["jobs"] = jobs;
}
BENCHMARK(BM_StoreMerge)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
