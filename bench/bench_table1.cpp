// Experiment T1 — the paper's Table 1.
//
//   Benchmark | fsv Depth | Y Depth | Total Depth
//
// "Depth" is the number of gate levels of the fsv equation and of the
// deepest next-state equation; Total is the worst-case level count to
// reach stability (VOM assertion) = fsv + Y + 1 (gate A).  Paper values
// (DAC'91 Table 1) are printed alongside for comparison.  Absolute
// equality is not expected — the benchmark tables are reconstructions
// (DESIGN.md §4) — but the structure (Y depth pinned at 5 by the Fig. 5
// factoring, fsv depth 2-4, totals 8-10) should match.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_suite/benchmarks.hpp"
#include "core/synthesize.hpp"

namespace {

using seance::bench_suite::table1_suite;

void print_table1() {
  std::printf("\n=== Table 1: Results Using MCNC Benchmarks (reconstruction) ===\n");
  std::printf("%-14s | %-19s | %-19s | %-19s | %s\n", "Benchmark",
              "fsv Depth (paper)", "Y Depth (paper)", "Total (paper)",
              "states (reduced)");
  std::printf("---------------+---------------------+---------------------+"
              "---------------------+-----------------\n");
  for (const auto& bench : table1_suite()) {
    const auto table = seance::bench_suite::load(bench);
    const auto machine = seance::core::synthesize(table);
    const auto depths = machine.depth_report();
    std::printf("%-14s | %4d  (%d)           | %4d  (%d)           | %4d  (%d)"
                "           | %d -> %d\n",
                bench.name.c_str(), depths.fsv_depth, bench.paper_fsv_depth,
                depths.y_depth, bench.paper_y_depth, depths.total_depth,
                bench.paper_total_depth, table.num_states(),
                machine.table.num_states());
  }
  std::printf("\n");
}

void BM_SynthesizeTable1(benchmark::State& state) {
  const auto& bench = table1_suite()[static_cast<std::size_t>(state.range(0))];
  const auto table = seance::bench_suite::load(bench);
  seance::core::DepthReport depths;
  for (auto _ : state) {
    const auto machine = seance::core::synthesize(table);
    depths = machine.depth_report();
    benchmark::DoNotOptimize(machine);
  }
  state.counters["fsv_depth"] = depths.fsv_depth;
  state.counters["y_depth"] = depths.y_depth;
  state.counters["total_depth"] = depths.total_depth;
  state.SetLabel(bench.name);
}

BENCHMARK(BM_SynthesizeTable1)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
