// Experiment F3 — the SEANCE flow of Fig. 3, step by step, and its
// scaling over synthetic normal-mode tables (states 4-24, inputs 2-5).
//
// Prints per-step wall time (reduction, USTT assignment, hazard search,
// equation generation) so the cost structure of the flow chart is
// visible, then times the steps with google-benchmark over the sweep.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "assign/ustt.hpp"
#include "bench_suite/generator.hpp"
#include "core/synthesize.hpp"
#include "hazard/search.hpp"
#include "minimize/reduce.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

seance::flowtable::FlowTable make_table(int states, int inputs, std::uint64_t seed) {
  seance::bench_suite::GeneratorOptions gen;
  gen.num_states = states;
  gen.num_inputs = inputs;
  gen.num_outputs = 2;
  gen.seed = seed;
  return seance::bench_suite::generate(gen);
}

void print_steps() {
  std::printf("\n=== SEANCE per-step cost over synthetic tables ===\n");
  std::printf("%6s %6s | %10s %10s %10s %12s | %8s %8s\n", "states", "inputs",
              "reduce", "assign", "hazards", "equations", "st.vars", "FL size");
  std::printf("--------------+------------------------------------------------+------------------\n");
  // Combos are chosen to keep the QM equation space under ~12 variables;
  // the 13-variable points (e.g. 16 states x 3 inputs reducing to 9 state
  // variables) push prime generation into the tens of seconds and are
  // reported in EXPERIMENTS.md instead of being re-run every invocation.
  const int combos[][2] = {{4, 2}, {4, 3}, {4, 4}, {8, 2}, {8, 3}, {8, 4},
                           {12, 2}, {12, 4}, {16, 2}};
  for (const auto& combo : combos) {
    const int states = combo[0];
    const int inputs = combo[1];
    {
      const auto table = make_table(states, inputs, 42);

      auto t0 = Clock::now();
      const auto reduction = seance::minimize::reduce(table);
      const double t_reduce = ms_since(t0);

      t0 = Clock::now();
      const auto assignment = seance::assign::assign_ustt(reduction.reduced);
      const double t_assign = ms_since(t0);

      t0 = Clock::now();
      seance::hazard::EncodedTable encoded{&reduction.reduced, assignment.codes,
                                           assignment.num_vars};
      const auto hazards = seance::hazard::find_hazards(encoded);
      const double t_hazard = ms_since(t0);

      t0 = Clock::now();
      const auto machine = seance::core::synthesize(table);
      const double t_total = ms_since(t0);

      std::printf("%6d %6d | %8.2fms %8.2fms %8.2fms %10.2fms | %8d %8d\n",
                  states, inputs, t_reduce, t_assign, t_hazard, t_total,
                  machine.layout.num_state_vars,
                  static_cast<int>(machine.hazards.fl.size()));
    }
  }
  std::printf("(equations column = full pipeline incl. QM and factoring)\n\n");
}

void BM_Reduce(benchmark::State& state) {
  const auto table = make_table(static_cast<int>(state.range(0)), 3, 7);
  for (auto _ : state) benchmark::DoNotOptimize(seance::minimize::reduce(table));
}
BENCHMARK(BM_Reduce)->Arg(6)->Arg(10)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_Assign(benchmark::State& state) {
  const auto table = make_table(static_cast<int>(state.range(0)), 3, 7);
  const auto reduction = seance::minimize::reduce(table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::assign::assign_ustt(reduction.reduced));
  }
}
BENCHMARK(BM_Assign)->Arg(6)->Arg(10)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_HazardSearch(benchmark::State& state) {
  const auto table = make_table(static_cast<int>(state.range(0)), 3, 7);
  const auto reduction = seance::minimize::reduce(table);
  const auto assignment = seance::assign::assign_ustt(reduction.reduced);
  seance::hazard::EncodedTable encoded{&reduction.reduced, assignment.codes,
                                       assignment.num_vars};
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::hazard::find_hazards(encoded));
  }
}
BENCHMARK(BM_HazardSearch)->Arg(6)->Arg(10)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_FullPipelineSweep(benchmark::State& state) {
  const auto table = make_table(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)), 7);
  for (auto _ : state) benchmark::DoNotOptimize(seance::core::synthesize(table));
}
// Larger sweeps are bounded by the Quine-McCluskey space: past ~14
// equation variables (inputs + state variables + fsv) prime generation
// over the don't-care-rich space dominates, so the sweep stops at 16x4.
BENCHMARK(BM_FullPipelineSweep)
    ->Args({6, 2})
    ->Args({10, 3})
    ->Args({12, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_steps();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
