// Word-parallel prime-implicant engine benchmarks.
//
// Before/after tables against the retained hash-map prime generator
// (reference_compute_primes) on the two density regimes that matter:
// fsv-cover-shaped random functions (the all-primes mode every fsv
// synthesis hits) and the >90%-DC Y-equation shape of deep machines
// (the sharp path's regime).  `--sweep-limits` reruns the exact-cover
// tuning experiment behind kExactCellLimit / kDefaultExactNodeBudget on
// the real pipeline: the harder 12-state / 5-input corpus synthesized
// at several branch-and-bound budgets.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <random>
#include <string_view>
#include <vector>

#include "bench_suite/generator.hpp"
#include "core/synthesize.hpp"
#include "driver/batch.hpp"
#include "logic/prime_engine.hpp"
#include "logic/qm.hpp"
#include "logic/qm_reference.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Func {
  std::vector<seance::logic::Minterm> on;
  std::vector<seance::logic::Minterm> dc;
};

Func random_function(int num_vars, double p_on, double p_dc, std::uint64_t seed) {
  Func f;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (seance::logic::Minterm m = 0; m < (1u << num_vars); ++m) {
    const double r = dist(rng);
    if (r < p_on) {
      f.on.push_back(m);
    } else if (r < p_on + p_dc) {
      f.dc.push_back(m);
    }
  }
  return f;
}

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

void print_compare_row(int vars, double p_on, double p_dc, std::uint64_t seed) {
  const auto f = random_function(vars, p_on, p_dc, seed);
  const auto t0 = Clock::now();
  const auto reference = seance::logic::reference_compute_primes(vars, f.on, f.dc);
  const auto t1 = Clock::now();
  const auto engine = seance::logic::prime_engine::compute_primes(vars, f.on, f.dc);
  const auto t2 = Clock::now();
  const double ref_ms = ms_between(t0, t1);
  const double new_ms = ms_between(t1, t2);
  std::printf("%6d | %8zu | %12.3f | %12.3f | %8.1fx | %s\n", vars,
              engine.size(), ref_ms, new_ms,
              new_ms > 0 ? ref_ms / new_ms : 0.0,
              engine.size() == reference.size() ? "match" : "MISMATCH");
}

void print_table() {
  std::printf("\n=== prime generation before/after (hash-map reference vs "
              "word-parallel engine) ===\n");
  std::printf("fsv-cover shape: 30%% ON / 20%% DC (all-primes mode workload)\n");
  std::printf("%6s | %8s | %12s | %12s | %9s |\n", "vars", "primes",
              "reference ms", "engine ms", "speedup");
  std::printf("-------+----------+--------------+--------------+-----------+------\n");
  for (int vars = 4; vars <= 12; ++vars) print_compare_row(vars, 0.3, 0.2, 97);

  std::printf("\nY-equation shape: 5%% ON / 92%% DC (deep-machine equations, "
              "sharp path)\n");
  std::printf("%6s | %8s | %12s | %12s | %9s |\n", "vars", "primes",
              "reference ms", "engine ms", "speedup");
  std::printf("-------+----------+--------------+--------------+-----------+------\n");
  for (int vars = 8; vars <= 13; ++vars) print_compare_row(vars, 0.05, 0.92, 97);
  std::printf("\n");
}

// The tuning experiment behind the current kExactCellLimit /
// kDefaultExactNodeBudget (see logic/qm.hpp): the harder corpus
// synthesized end to end at several exact-cover node budgets.  Budget 1
// means every non-forced chart goes to the lazy-greedy completion.
void print_limit_sweep() {
  std::printf("=== exact-cover budget sweep on the harder corpus "
              "(12 states / 5 inputs, 8 jobs) ===\n");
  std::printf("%12s | %10s | %11s\n", "node budget", "wall ms", "total gates");
  std::printf("-------------+------------+------------\n");
  std::vector<seance::flowtable::FlowTable> tables;
  for (int i = 0; i < 8; ++i) {
    seance::bench_suite::GeneratorOptions gen = seance::driver::kHarderShape;
    gen.seed = seance::driver::derive_seed(1, static_cast<std::uint64_t>(i));
    tables.push_back(seance::bench_suite::generate(gen));
  }
  for (const std::size_t budget :
       {std::size_t{1}, std::size_t{500'000}, std::size_t{2'000'000},
        std::size_t{8'000'000}}) {
    seance::core::SynthesisOptions options;
    options.cover_node_budget = budget;
    const auto t0 = Clock::now();
    int gates = 0;
    for (const auto& table : tables) {
      gates += seance::core::synthesize(table, options).gate_count();
    }
    const auto t1 = Clock::now();
    std::printf("%12zu | %10.1f | %11d\n", budget, ms_between(t0, t1), gates);
  }
  std::printf("(kExactCellLimit keeps million-cell charts out of the "
              "branch-and-bound entirely:\n no harder chart above ~400k "
              "cells ever reached a proof, even at 100M nodes.)\n\n");
}

void BM_PrimeEngineFsvShape(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const auto f = random_function(vars, 0.3, 0.2, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        seance::logic::prime_engine::compute_primes(vars, f.on, f.dc));
  }
}
BENCHMARK(BM_PrimeEngineFsvShape)->DenseRange(4, 12)->Unit(benchmark::kMicrosecond);

void BM_PrimeReferenceFsvShape(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const auto f = random_function(vars, 0.3, 0.2, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        seance::logic::reference_compute_primes(vars, f.on, f.dc));
  }
}
BENCHMARK(BM_PrimeReferenceFsvShape)->DenseRange(4, 12)->Unit(benchmark::kMicrosecond);

void BM_PrimeEngineDenseDc(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const auto f = random_function(vars, 0.05, 0.92, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        seance::logic::prime_engine::compute_primes(vars, f.on, f.dc));
  }
}
BENCHMARK(BM_PrimeEngineDenseDc)->DenseRange(8, 14)->Unit(benchmark::kMicrosecond);

// Primes plus the packed incidence bitmatrix — the exact call
// select_cover makes, so this is the per-equation cost of the QM front
// half in the pipeline.
void BM_PrimeIncidence(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const auto f = random_function(vars, 0.3, 0.2, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        seance::logic::prime_engine::compute_incidence(vars, f.on, f.dc));
  }
}
BENCHMARK(BM_PrimeIncidence)->DenseRange(4, 12)->Unit(benchmark::kMicrosecond);

// Full pipeline at the harder canonical shape: QM prime generation on
// 12-15-variable, >90%-DC equations dominates this wall time.
void BM_SynthesizeHarderShape(benchmark::State& state) {
  seance::bench_suite::GeneratorOptions gen = seance::driver::kHarderShape;
  gen.seed = seance::driver::derive_seed(1, static_cast<std::uint64_t>(state.range(0)));
  const auto table = seance::bench_suite::generate(gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seance::core::synthesize(table));
  }
}
BENCHMARK(BM_SynthesizeHarderShape)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip our flag before google-benchmark sees (and rejects) it.
  bool sweep_limits = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--sweep-limits") {
      sweep_limits = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  print_table();
  if (sweep_limits) print_limit_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
