// Experiment for PR 8's shared search core: what the transposition
// table buys on the canonical corpus shapes, and where the exact-cover
// frontier sits once the memo is on.
//
// Two reports print before the google-benchmark timings:
//
//  * Memo table — the harder/hardest corpus jobs run memo-off and
//    memo-on through the worker pipeline.  Three properties are
//    *asserted*, not just reported: memo-on rows are identical across
//    repeated runs (determinism), identical whether the worker's
//    shared table or no table is handed in (purity — core::synthesize
//    clears a supplied table on entry and self-allocates otherwise),
//    and the job-scoped hit rate is what the table prints.  Rows that
//    differ between off and on are *expected* on this corpus: a
//    budget-truncated search keeps the incumbent its pruned traversal
//    reached, and memo pruning moves that frontier — deterministically,
//    because entries never outlive one job.
//
//  * Frontier table — per-job certified covering bounds
//    (cover_cubes/cover_gap from core::CoverBounds) under the default
//    exact-cover ceilings vs a raised-ceiling + 4x-budget run.  Charts
//    the default run could not prove either get proven by the headroom
//    run (gap closes to zero) or keep a *certified* nonzero gap — the
//    bound is sound either way, which is the point of reporting it.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "driver/batch.hpp"
#include "logic/qm.hpp"
#include "search/search.hpp"

namespace {

using seance::driver::BatchOptions;
using seance::driver::BatchRunner;
using seance::driver::JobResult;
using seance::driver::JobSpec;
using seance::search::TranspositionTable;

/// The corpus: a slice of the golden harder/hardest streams (same
/// shapes, same derive_seed stream, smaller counts so the report runs
/// in CI's bench-smoke budget).
std::vector<JobSpec> corpus() {
  BatchRunner runner;
  runner.add_harder_generated(6, 1);
  runner.add_hardest_generated(4, 1);
  return runner.jobs();
}

struct SweepResult {
  std::vector<JobResult> rows;
  seance::search::TtStats stats;
  double wall_ms = 0;
};

/// Runs the corpus through the full job pipeline (verify + ternary),
/// the way BatchRunner workers do.  `memo_on` toggles options.tt;
/// `shared` hands the worker's table in (synthesize clears it per job).
SweepResult run_corpus(const std::vector<JobSpec>& jobs, bool memo_on,
                       TranspositionTable* shared) {
  BatchOptions options;
  SweepResult out;
  const auto start = std::chrono::steady_clock::now();
  for (JobSpec job : jobs) {
    job.options.tt = memo_on;
    out.rows.push_back(BatchRunner::run_job(job, options, nullptr, shared));
  }
  if (shared != nullptr) out.stats = shared->stats();
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

void require_identical_rows(const std::vector<JobResult>& a,
                            const std::vector<JobResult>& b,
                            const char* what) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (seance::driver::to_csv_row(a[i]) !=
        seance::driver::to_csv_row(b[i])) {
      std::fprintf(stderr, "FATAL: %s differ (job %s)\n", what,
                   a[i].name.c_str());
      std::abort();
    }
  }
}

double hit_rate(const seance::search::TtStats& s) {
  const double probes = static_cast<double>(s.hits + s.misses);
  return probes > 0 ? 100.0 * static_cast<double>(s.hits) / probes : 0.0;
}

void print_memo_sweep() {
  const std::vector<JobSpec> jobs = corpus();
  const SweepResult off = run_corpus(jobs, false, nullptr);

  TranspositionTable shared(jobs.front().options.tt_mb << 20);
  const SweepResult on = run_corpus(jobs, true, &shared);
  const SweepResult on_again = run_corpus(jobs, true, &shared);
  require_identical_rows(on.rows, on_again.rows, "repeated memo-on rows");
  const SweepResult on_local = run_corpus(jobs, true, nullptr);
  require_identical_rows(on.rows, on_local.rows,
                         "shared-table vs self-allocated memo rows");

  int moved = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (seance::driver::to_csv_row(off.rows[i]) !=
        seance::driver::to_csv_row(on.rows[i])) {
      ++moved;
    }
  }

  std::printf(
      "\n=== Transposition-table memo (%zu harder/hardest jobs) ===\n",
      jobs.size());
  std::printf("%-10s | %10s | %10s | %8s | %9s | %8s\n", "policy", "probes",
              "hits", "hit-rate", "evictions", "wall ms");
  std::printf(
      "-----------+------------+------------+----------+-----------+---------\n");
  const struct {
    const char* label;
    const SweepResult* r;
  } table[] = {{"off", &off}, {"on", &on}};
  for (const auto& row : table) {
    const auto& s = row.r->stats;
    std::printf("%-10s | %10llu | %10llu | %7.1f%% | %9llu | %8.0f\n",
                row.label,
                static_cast<unsigned long long>(s.hits + s.misses),
                static_cast<unsigned long long>(s.hits), hit_rate(s),
                static_cast<unsigned long long>(s.evictions),
                row.r->wall_ms);
  }
  std::printf(
      "asserted: memo-on rows repeat byte-identically and do not depend on\n"
      "whose table is handed in (entries are job-scoped).  %d/%zu rows\n"
      "differ between off and on — budget-truncated searches where memo\n"
      "pruning moved the frontier, which is why tt is part of the options\n"
      "identity string.\n",
      moved, jobs.size());
}

/// The kExactCellLimit re-tuning experiment (the pre-memo sweep that
/// set 512k lives in bench_primes --sweep-limits): each configuration
/// raises one ceiling at a time so the table shows what the memo, the
/// cell ceiling, and the node budget each contribute.
void print_frontier_sweep() {
  const std::vector<JobSpec> jobs = corpus();
  const struct {
    const char* label;
    std::size_t cells;
    std::size_t nodes;
    std::size_t tt_mb;
  } configs[] = {
      {"default", seance::logic::kExactCellLimit,
       seance::logic::kDefaultExactNodeBudget, 16},
      {"cells x4", seance::logic::kExactCellLimit * 4,
       seance::logic::kDefaultExactNodeBudget, 16},
      {"cells+nodes x4", seance::logic::kExactCellLimit * 4,
       seance::logic::kDefaultExactNodeBudget * 4, 64},
  };
  constexpr std::size_t kConfigs = std::size(configs);

  std::vector<std::vector<JobResult>> rows(kConfigs);
  std::vector<double> wall(kConfigs, 0);
  for (std::size_t c = 0; c < kConfigs; ++c) {
    TranspositionTable tt(configs[c].tt_mb << 20);
    const auto start = std::chrono::steady_clock::now();
    for (JobSpec job : jobs) {
      job.options.cover_cell_limit = configs[c].cells;
      job.options.cover_node_budget = configs[c].nodes;
      job.options.tt_mb = configs[c].tt_mb;
      rows[c].push_back(BatchRunner::run_job(job, BatchOptions{}, nullptr, &tt));
    }
    wall[c] = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  }

  std::printf("\n=== Exact-cover frontier: ceiling sweep (cubes/gap per "
              "job) ===\n");
  std::printf("%-18s", "job");
  for (const auto& cfg : configs) std::printf(" | %14s", cfg.label);
  std::printf(" | verdict\n");
  std::printf("%-18s", "");
  for (std::size_t c = 0; c < kConfigs; ++c) std::printf(" | %7s %6s", "cubes", "gap");
  std::printf(" |\n");
  int newly_proven = 0;
  int certified_gaps = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobResult& b = rows[0][i];
    const JobResult& best = rows[kConfigs - 1][i];
    const char* verdict = "proven both ways";
    if (b.cover_gap > 0 && best.cover_gap == 0) {
      verdict = "NEWLY PROVEN";
      ++newly_proven;
    } else if (best.cover_gap > 0) {
      verdict = "certified gap";
      ++certified_gaps;
    }
    std::printf("%-18s", b.name.c_str());
    for (std::size_t c = 0; c < kConfigs; ++c) {
      std::printf(" | %7d %6d", rows[c][i].cover_cubes, rows[c][i].cover_gap);
    }
    std::printf(" | %s\n", verdict);
  }
  std::printf("%-18s", "wall ms");
  for (std::size_t c = 0; c < kConfigs; ++c) std::printf(" | %14.0f", wall[c]);
  std::printf(" |\n");
  std::printf("(%d chart(s) newly proven vs default, %d job(s) with a "
              "certified nonzero gap;\n gaps are sums of per-chart "
              "cubes-minus-lower-bound, so 0 == every cover proven "
              "minimum)\n\n",
              newly_proven, certified_gaps);
}

void BM_HarderJobMemoOff(benchmark::State& state) {
  BatchRunner runner;
  runner.add_harder_generated(1, 1);
  JobSpec job = runner.jobs().front();
  job.options.tt = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchRunner::run_job(job, BatchOptions{}));
  }
}
BENCHMARK(BM_HarderJobMemoOff)->Unit(benchmark::kMillisecond);

void BM_HarderJobMemoOn(benchmark::State& state) {
  BatchRunner runner;
  runner.add_harder_generated(1, 1);
  const JobSpec job = runner.jobs().front();
  TranspositionTable tt(job.options.tt_mb << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BatchRunner::run_job(job, BatchOptions{}, nullptr, &tt));
  }
}
BENCHMARK(BM_HarderJobMemoOn)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_memo_sweep();
  print_frontier_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
